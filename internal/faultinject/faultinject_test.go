package faultinject

import (
	"sync"
	"testing"
)

func TestDeterministicPerSeed(t *testing.T) {
	a := New(42).Set(LUFactorFail, 0.05)
	b := New(42).Set(LUFactorFail, 0.05)
	hookA, hookB := a.Hook(LUFactorFail), b.Hook(LUFactorFail)
	for i := 0; i < 10000; i++ {
		if hookA() != hookB() {
			t.Fatalf("decision %d differs between identically seeded injectors", i)
		}
	}
	if a.Fired(LUFactorFail) != b.Fired(LUFactorFail) {
		t.Fatalf("fired counts differ: %d vs %d", a.Fired(LUFactorFail), b.Fired(LUFactorFail))
	}
}

func TestRateRoughlyHolds(t *testing.T) {
	inj := New(7).Set(CutWorkerPanic, 0.05)
	hook := inj.Hook(CutWorkerPanic)
	const n = 100000
	fired := 0
	for i := 0; i < n; i++ {
		if hook() {
			fired++
		}
	}
	if fired < n/40 || fired > n/10 {
		t.Fatalf("5%% rate fired %d/%d times", fired, n)
	}
}

func TestZeroRateNeverFires(t *testing.T) {
	inj := New(1).Set(SlowSolve, 0)
	hook := inj.Hook(SlowSolve)
	for i := 0; i < 1000; i++ {
		if hook() {
			t.Fatal("rate-0 point fired")
		}
	}
	if inj.Calls(SlowSolve) != 1000 {
		t.Fatalf("calls = %d, want 1000", inj.Calls(SlowSolve))
	}
}

func TestConcurrentTotalIsSeedStable(t *testing.T) {
	// Under concurrency the k-th call races, but the multiset of decisions
	// over N total calls is fixed by (seed, name): the same N hashes are
	// drawn no matter which goroutine draws which.
	const calls = 40000
	total := func(workers int) int64 {
		inj := New(99).Set(CacheShardError, 0.1)
		hook := inj.Hook(CacheShardError)
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := 0; i < calls/workers; i++ {
					hook()
				}
			}()
		}
		wg.Wait()
		if got := inj.Calls(CacheShardError); got != calls {
			t.Fatalf("calls = %d, want %d", got, calls)
		}
		return inj.Fired(CacheShardError)
	}
	if a, b := total(1), total(8); a != b {
		t.Fatalf("total fired differs by concurrency: %d vs %d", a, b)
	}
}

func TestDifferentPointsIndependent(t *testing.T) {
	inj := New(5).Set(LUFactorFail, 0.5).Set(BGLaneDrop, 0.5)
	ha, hb := inj.Hook(LUFactorFail), inj.Hook(BGLaneDrop)
	same := 0
	for i := 0; i < 1000; i++ {
		if ha() == hb() {
			same++
		}
	}
	if same > 900 {
		t.Fatalf("points look correlated: %d/1000 equal decisions", same)
	}
}
