// Package faultinject provides deterministic, seeded fault injection for
// the chaos test suite. Production code exposes nil func-valued hook
// variables (e.g. lp.FaultLUFactor); tests build an Injector, Set rates
// for the named points they want to misbehave, and install the point's
// Hook into the production variable. A nil hook compiles to a single
// pointer comparison on the production path.
//
// Decisions are deterministic: whether the k-th call at a point fires
// depends only on (seed, point name, k) via a splitmix64 hash, never on
// scheduling. Two runs with the same seed and the same per-goroutine call
// interleaving within a point therefore draw the same total fault count
// over any N calls — which is what lets the chaos suite assert exact
// invariants ("no job lost", "every degraded answer labeled") instead of
// statistical ones.
package faultinject

import (
	"fmt"
	"sync"
	"sync/atomic"
)

// The named fault points wired through the repo. The constants exist so
// chaos tests and the catalog in DESIGN.md §9 spell them identically.
const (
	// LUFactorFail makes a sparse-simplex basis factorization report a
	// singular basis (lp.FaultLUFactor).
	LUFactorFail = "lu-factor-fail"
	// CutWorkerPanic panics inside a parallel cut-separation worker
	// (allot.FaultCutWorker).
	CutWorkerPanic = "cut-worker-panic"
	// CacheShardError makes a cache shard unavailable for one operation;
	// the cache fails open to an uncached compute (server.FaultCacheShard).
	CacheShardError = "cache-shard-error"
	// SlowSolve delays a job on the worker before it starts
	// (engine.FaultSlowSolve).
	SlowSolve = "slow-solve"
	// BGLaneDrop drops a background-lane submission as if the lane were
	// full (engine.FaultBGDrop).
	BGLaneDrop = "bg-lane-drop"
	// FlowSweepStall stalls the parametric min-cut sweep mid-solve, as if
	// an augmentation budget were exhausted (flow.FaultSweep). Surfaces as
	// flow.ErrStalled; the ladder retries on a simplex rung.
	FlowSweepStall = "flow-sweep-stall"
)

// Injector decides, per named point, whether each successive call fires.
// Safe for concurrent use.
type Injector struct {
	seed uint64

	mu     sync.Mutex
	points map[string]*point
}

type point struct {
	threshold uint64        // fire when hash < threshold
	calls     atomic.Uint64 // total decisions taken
	fired     atomic.Int64  // decisions that fired
}

// New returns an injector; all points default to rate 0 (never fire).
func New(seed int64) *Injector {
	return &Injector{seed: uint64(seed), points: make(map[string]*point)}
}

// Set fixes the firing rate of a named point in [0, 1] and returns the
// injector for chaining. Setting a rate resets the point's counters.
func (inj *Injector) Set(name string, rate float64) *Injector {
	if rate < 0 {
		rate = 0
	}
	if rate > 1 {
		rate = 1
	}
	inj.mu.Lock()
	defer inj.mu.Unlock()
	inj.points[name] = &point{threshold: uint64(rate * float64(^uint64(0)))}
	return inj
}

// Hook returns the decision function for a named point, in the shape the
// production hook variables expect: each call is one decision. The point
// must have been Set first.
func (inj *Injector) Hook(name string) func() bool {
	p := inj.point(name)
	return func() bool { return inj.decide(name, p) }
}

// Should takes one decision at a named point directly (for hooks whose
// production shape is not func() bool).
func (inj *Injector) Should(name string) bool {
	return inj.decide(name, inj.point(name))
}

// Calls reports how many decisions a point has taken.
func (inj *Injector) Calls(name string) uint64 { return inj.point(name).calls.Load() }

// Fired reports how many decisions at a point fired.
func (inj *Injector) Fired(name string) int64 { return inj.point(name).fired.Load() }

func (inj *Injector) point(name string) *point {
	inj.mu.Lock()
	defer inj.mu.Unlock()
	p, ok := inj.points[name]
	if !ok {
		panic(fmt.Sprintf("faultinject: point %q not configured (call Set first)", name))
	}
	return p
}

func (inj *Injector) decide(name string, p *point) bool {
	k := p.calls.Add(1)
	if p.threshold == 0 {
		return false
	}
	h := inj.seed
	for i := 0; i < len(name); i++ {
		h = (h ^ uint64(name[i])) * 0x100000001b3
	}
	fire := splitmix64(h^k) < p.threshold
	if fire {
		p.fired.Add(1)
	}
	return fire
}

// splitmix64 is the standard 64-bit finalizing mix: uniform output for
// sequential input, so call index k maps to an independent uniform draw.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}
