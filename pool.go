package malsched

import (
	"context"
	"errors"

	"malsched/internal/engine"
	"malsched/internal/solver"
)

// ErrPoolClosed is reported for solves submitted to a closed Pool.
var ErrPoolClosed = engine.ErrClosed

var errNilInstance = errors.New("malsched: nil instance")

// Pool solves instances concurrently on a fixed set of worker goroutines.
// Each worker owns a reusable cross-phase solver workspace (preallocated
// simplex tableau, basis and pricing buffers for phase 1; capacity profile
// and ready queue for phase 2), so a warm pool does near-zero allocation
// per solve and saturates every core on batch workloads while producing
// exactly the same results as Solve.
//
// A Pool is safe for concurrent use by multiple goroutines and holds its
// workers until Close.
type Pool struct {
	eng  *engine.Pool
	opts []Option
}

// NewPool starts a pool with the given number of workers (workers <= 0
// means GOMAXPROCS). The options are applied to every solve the pool runs,
// before any per-call options. Call Close to release the workers.
func NewPool(workers int, opts ...Option) *Pool {
	return &Pool{eng: engine.New(workers), opts: opts}
}

// Workers returns the number of worker goroutines.
func (p *Pool) Workers() int { return p.eng.Workers() }

// Close shuts down the pool's workers. Jobs already running complete;
// solves submitted afterwards fail with ErrPoolClosed. Close is idempotent.
func (p *Pool) Close() { p.eng.Close() }

// combined merges the pool-level options with per-call overrides. The
// result is read-only: with no overrides it is p.opts itself, which
// concurrent solves share.
func (p *Pool) combined(opts []Option) []Option {
	if len(opts) == 0 {
		return p.opts
	}
	all := make([]Option, 0, len(p.opts)+len(opts))
	all = append(all, p.opts...)
	return append(all, opts...)
}

// Solve solves one instance on the pool, blocking until the result is
// ready. Concurrent callers are served in parallel by different workers.
// Per-call options override the pool's options.
func (p *Pool) Solve(ctx context.Context, in *Instance, opts ...Option) (*Result, error) {
	return p.SolveAlgo(ctx, AlgoPaper, in, opts...)
}

// SolveAlgo solves one instance with the selected algorithm on the pool,
// blocking until the result is ready. AlgoPaper is exactly Pool.Solve; the
// baseline algorithms reuse the worker's workspace the same way, so a mixed
// algorithm stream (as produced by the serving layer's adaptive router)
// still runs allocation-free once warm. Per-call options override the
// pool's options; the baselines ignore the paper algorithm's mu/rho options.
func (p *Pool) SolveAlgo(ctx context.Context, algo Algorithm, in *Instance, opts ...Option) (*Result, error) {
	if in == nil {
		return nil, errNilInstance
	}
	var res *Result
	err := p.eng.RunOne(ctx, func(ws *solver.Workspace) error {
		r, err := solveAlgoWith(in, ws, algo, p.combined(opts))
		res = r
		return err
	})
	return res, err
}

// TrySolveBackground submits a fire-and-forget solve on the pool's
// background lane: it runs on a worker only when no foreground solve is
// waiting, so refinement work never delays interactive requests. The
// outcome is delivered to done (from the worker goroutine; done must be
// safe for that). It reports false — and does not run anything — when the
// lane is full or the pool is closed: background work is best-effort and
// load-shedding is the caller's signal to count.
func (p *Pool) TrySolveBackground(algo Algorithm, in *Instance, done func(*Result, error), opts ...Option) bool {
	if in == nil || done == nil {
		return false
	}
	all := p.combined(opts)
	return p.eng.TryBackground(func(ws *solver.Workspace) error {
		done(solveAlgoWith(in, ws, algo, all))
		return nil
	})
}

// BatchResult is the outcome of one instance of a batch: exactly one of
// Result and Err is set.
type BatchResult struct {
	Result *Result
	Err    error
}

// SolveBatch fans the instances out across the pool's workers and returns
// one outcome per instance, order-preserving: out[i] belongs to ins[i]
// regardless of scheduling, so results are deterministic for any worker
// count. Errors are isolated per instance — an invalid or failing instance
// does not affect its siblings. When ctx is cancelled, instances not yet
// started fail with the context's error, and solves already running abort
// at their next cancellation checkpoint (also with the context's error)
// unless they finish first; SolveBatch always waits for the solves it
// started.
func (p *Pool) SolveBatch(ctx context.Context, ins []*Instance, opts ...Option) []BatchResult {
	out := make([]BatchResult, len(ins))
	all := p.combined(opts)
	fns := make([]engine.Func, len(ins))
	for i := range ins {
		fns[i] = func(ws *solver.Workspace) error {
			if ins[i] == nil {
				return errNilInstance
			}
			r, err := solveWith(ins[i], ws, all)
			out[i].Result = r
			return err
		}
	}
	for i, err := range p.eng.Run(ctx, fns) {
		out[i].Err = err
	}
	return out
}
