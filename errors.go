package malsched

import (
	"context"
	"errors"

	"malsched/internal/allot"
	"malsched/internal/core"
	"malsched/internal/engine"
	"malsched/internal/flow"
	"malsched/internal/lp"
)

// FailureKind classifies a solve error for the serving layer's degradation
// ladder: recoverable numerical failures are re-solved on a lower rung,
// everything else propagates as-is.
type FailureKind int

const (
	// FailNone: no failure, or an error outside the solver taxonomy
	// (bad request, context cancellation) that no fallback can fix.
	FailNone FailureKind = iota
	// FailIterLimit: the simplex hit its iteration budget.
	FailIterLimit
	// FailSingular: the basis stayed singular after repair attempts.
	FailSingular
	// FailNumeric: NaN/Inf taint in the result quantities.
	FailNumeric
	// FailInfeasible: the LP reported infeasible/unbounded. LP (9) is
	// feasible by construction for every valid instance, so on this
	// pipeline such a report is itself a numerical symptom.
	FailInfeasible
	// FailPanic: the job panicked on its worker (isolated by the engine).
	FailPanic
)

// ClassifyFailure maps a solve error into the taxonomy. Context errors and
// validation errors classify as FailNone: retrying them on another tier is
// pointless (and cancellation must never trigger a fallback solve).
func ClassifyFailure(err error) FailureKind {
	switch {
	case err == nil,
		errors.Is(err, context.Canceled),
		errors.Is(err, context.DeadlineExceeded),
		errors.Is(err, lp.ErrCanceled):
		return FailNone
	case errors.Is(err, lp.ErrIterLimit),
		errors.Is(err, flow.ErrStalled):
		// A stalled parametric sweep is the flow core's iteration-budget
		// analogue: progress stopped, a simplex rung can still answer.
		return FailIterLimit
	case errors.Is(err, lp.ErrSingular):
		return FailSingular
	case errors.Is(err, core.ErrNumericTaint):
		return FailNumeric
	case errors.Is(err, lp.ErrInfeasible), errors.Is(err, lp.ErrUnbounded):
		return FailInfeasible
	case errors.Is(err, engine.ErrPanicked), errors.Is(err, allot.ErrCutPanic):
		return FailPanic
	}
	return FailNone
}

// Recoverable reports whether a lower solver rung may still produce an
// answer for this failure.
func (k FailureKind) Recoverable() bool { return k != FailNone }

// The stable reason labels carried by degraded responses and metrics.
// These constants are the single source of truth for the label strings:
// the errlabel analyzer (cmd/malschedvet) flags any other string literal
// with one of these values, so a label typo'd into a response or a
// metrics key cannot drift from the taxonomy.
const (
	labelIterLimit  = "iteration-limit"
	labelSingular   = "singular-basis"
	labelNumeric    = "nan-taint"
	labelInfeasible = "infeasible"
	labelPanic      = "solver-panic"
)

// String returns the stable reason label used in degraded responses and
// metrics ("" for FailNone). The switch lists every FailureKind
// explicitly — errlabel enforces exhaustiveness, so adding a Fail* class
// without wiring its label here is a build-time error.
func (k FailureKind) String() string {
	switch k {
	case FailNone:
		return ""
	case FailIterLimit:
		return labelIterLimit
	case FailSingular:
		return labelSingular
	case FailNumeric:
		return labelNumeric
	case FailInfeasible:
		return labelInfeasible
	case FailPanic:
		return labelPanic
	}
	return ""
}
