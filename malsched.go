// Package malsched schedules malleable tasks with precedence constraints on
// m identical processors, implementing the approximation algorithm of
//
//	K. Jansen, H. Zhang: "Scheduling malleable tasks with precedence
//	constraints", SPAA 2005 / J. Comput. Syst. Sci. 78 (2012) 245-259,
//
// with proven approximation ratio 100/63 + 100(sqrt(6469)+13)/5481
// ~= 3.291919 under the paper's two model assumptions: each task's
// processing time p(l) is non-increasing in the number l of processors
// allotted, and its speedup p(1)/p(l) is concave in l.
//
// A minimal use:
//
//	inst := &malsched.Instance{
//	    M: 8,
//	    Tasks: []malsched.Task{
//	        malsched.PowerLawTask("prep", 10, 0.8, 8),
//	        malsched.PowerLawTask("solve", 40, 0.9, 8),
//	    },
//	    Edges: [][2]int{{0, 1}},
//	}
//	res, err := malsched.Solve(inst)
//	// res.Makespan, res.Schedule.Items[j].Start/.Alloc, res.Guarantee ...
//
// The two-phase algorithm first solves a linear program (the allotment
// problem) with a from-scratch simplex solver and rounds its fractional
// solution, then runs a capacity-aware variant of list scheduling. See
// DESIGN.md in the repository for the architecture and EXPERIMENTS.md for
// the reproduction of the paper's tables and figures.
package malsched

import (
	"encoding/json"
	"fmt"
	"io"
	"math/rand"

	"malsched/internal/allot"
	"malsched/internal/bruteforce"
	"malsched/internal/core"
	"malsched/internal/dag"
	"malsched/internal/malleable"
	"malsched/internal/params"
	"malsched/internal/prep"
	"malsched/internal/schedule"
	"malsched/internal/sim"
	"malsched/internal/solver"
	"malsched/internal/trace"
)

// Task is a malleable task: Times[l-1] is its processing time on l
// processors. Tasks must satisfy the model assumptions (validated by
// Solve): non-increasing Times and concave speedup.
type Task = malleable.Task

// Schedule is a feasible non-preemptive schedule on M processors.
type Schedule = schedule.Schedule

// Item is one scheduled task within a Schedule.
type Item = schedule.Item

// Instance is a scheduling problem: n malleable tasks, precedence arcs
// between them (Edges[k] = {i, j} means task i must finish before task j
// starts), and a machine of M identical processors.
type Instance struct {
	M     int      `json:"m"`
	Tasks []Task   `json:"tasks"`
	Edges [][2]int `json:"edges"`
}

// NewTask builds a task from a processing-time vector (index 0 = one
// processor).
func NewTask(name string, times []float64) Task { return malleable.NewTask(name, times) }

// PowerLawTask returns p(l) = p1 * l^(-d), the paper's running example
// (0 < d <= 1).
func PowerLawTask(name string, p1, d float64, m int) Task { return malleable.PowerLaw(name, p1, d, m) }

// AmdahlTask returns p(l) = p1 * (f + (1-f)/l) for sequential fraction f.
func AmdahlTask(name string, p1, f float64, m int) Task { return malleable.Amdahl(name, p1, f, m) }

// CappedLinearTask returns perfect speedup up to k processors.
func CappedLinearTask(name string, p1 float64, k, m int) Task {
	return malleable.CappedLinear(name, p1, k, m)
}

// RandomTask draws a random task satisfying the model assumptions.
func RandomTask(name string, p1 float64, m int, rng *rand.Rand) Task {
	return malleable.RandomConcave(name, p1, m, rng)
}

// graph converts the edge list into the internal DAG. The edge list is
// deduplicated up front (internal/prep): AddEdge tolerates duplicates
// but pays a successor scan per insert, so canonicalising first keeps
// dense lists O(E log E) instead of O(E·deg).
func (in *Instance) graph() (*dag.DAG, error) {
	g := dag.New(len(in.Tasks))
	for _, e := range prep.DedupEdges(in.Edges) {
		if err := g.AddEdge(e[0], e[1]); err != nil {
			return nil, err
		}
	}
	if err := g.Validate(); err != nil {
		return nil, err
	}
	return g, nil
}

func (in *Instance) internal() (*allot.Instance, error) {
	g, err := in.graph()
	if err != nil {
		return nil, err
	}
	ai := &allot.Instance{G: g, Tasks: in.Tasks, M: in.M}
	if err := ai.Validate(); err != nil {
		return nil, err
	}
	return ai, nil
}

// Validate checks the instance: machine size, edge indices, acyclicity, and
// the two model assumptions on every task.
func (in *Instance) Validate() error {
	_, err := in.internal()
	return err
}

// Result is the outcome of a solver run.
type Result struct {
	// Schedule is the feasible schedule produced.
	Schedule *Schedule
	// Makespan is the schedule length Cmax.
	Makespan float64
	// LowerBound is a certified lower bound on the optimal makespan
	// (max{L*, W*/m} from the LP relaxation; 0 when the algorithm does not
	// solve the LP).
	LowerBound float64
	// Guarantee = Makespan / LowerBound when LowerBound > 0: an upper bound
	// on the realised approximation factor.
	Guarantee float64
	// Alloc[j] is the number of processors task j runs on.
	Alloc []int
	// Mu, Rho, ProvenRatio are the algorithm parameters used and the
	// Theorem 4.1 ratio they certify (0 for baseline heuristics without a
	// guarantee).
	Mu          int
	Rho         float64
	ProvenRatio float64
	// Formulation records which phase-1 LP formulation actually solved
	// the allotment problem ("" for baseline heuristics, which skip it).
	Formulation Formulation
	// LPCuts and LPRounds are phase-1 effort diagnostics, with
	// formulation-dependent meaning: the simplex routes report lazy cuts
	// added and separation rounds, the min-cut sweep reports parameter
	// breakpoints and flow augmentations. Both 0 for baselines.
	LPCuts   int
	LPRounds int
	// State is the warm-start handle captured when the solve ran with
	// WithCapture (nil otherwise, and nil when capture was impossible).
	State *SolverState
}

// solveConfig collects what the options configure: the core algorithm
// options plus the warm-start plumbing the public layer owns.
type solveConfig struct {
	core    core.Options
	capture bool
	warm    *SolverState
}

// Formulation names a phase-1 LP formulation: the lazy-cut sparse
// simplex, the segment-variable simplex, the parametric min-cut sweep,
// or the dense reference oracle. The empty value lets the router pick
// by instance shape.
type Formulation = allot.Formulation

// The phase-1 formulations a solve can report or be pinned to.
const (
	FormulationLazy    = allot.FormulationLazy
	FormulationSegment = allot.FormulationSegment
	FormulationMincut  = allot.FormulationMincut
	FormulationDense   = allot.FormulationDense
)

// ParseFormulation validates a formulation name from an external surface
// (API request, CLI flag). The empty string parses to the auto route.
func ParseFormulation(s string) (Formulation, error) {
	switch f := Formulation(s); f {
	case "", FormulationLazy, FormulationSegment, FormulationMincut, FormulationDense:
		return f, nil
	}
	return "", fmt.Errorf("malsched: unknown formulation %q (valid: %s, %s, %s, %s)",
		s, FormulationLazy, FormulationSegment, FormulationMincut, FormulationDense)
}

// Option configures Solve.
type Option func(*solveConfig)

// WithRho overrides the rounding parameter rho in [0, 1].
func WithRho(rho float64) Option {
	return func(o *solveConfig) { o.core.Rho, o.core.RhoSet = rho, true }
}

// WithMu overrides the allotment threshold mu in [1, m].
func WithMu(mu int) Option {
	return func(o *solveConfig) { o.core.Mu = mu }
}

// WithFormulation pins the phase-1 LP formulation instead of letting the
// router pick by instance shape. Pins other than lazy are incompatible
// with warm-start capture (snapshots only exist on the lazy route).
func WithFormulation(f Formulation) Option {
	return func(o *solveConfig) { o.core.Formulation = f }
}

// WithDenseLP routes phase 1 through the dense reference LP oracle instead
// of the sparse simplex. The dense tableau materialises every supporting
// line, so this is only viable for small instances; it exists as the
// serving layer's fallback rung when the sparse path hits numerical
// trouble (the dense route shares none of the sparse solver's basis
// machinery, so failures there do not reproduce here).
func WithDenseLP() Option {
	return func(o *solveConfig) { o.core.DenseLP = true }
}

// Solve runs the paper's two-phase approximation algorithm with the
// parameter choices of Theorem 4.1 (overridable through options). For
// solving many instances, or many requests concurrently, prefer a Pool: it
// amortises solver allocations across solves and saturates all cores.
func Solve(in *Instance, opts ...Option) (*Result, error) {
	return solveWith(in, nil, opts)
}

// solveWith is the shared implementation behind Solve and Pool: it runs the
// two-phase algorithm with an optional reusable cross-phase workspace.
func solveWith(in *Instance, ws *solver.Workspace, opts []Option) (*Result, error) {
	ai, err := in.internal()
	if err != nil {
		return nil, err
	}
	var o solveConfig
	for _, f := range opts {
		f(&o)
	}
	o.core.CaptureLP = o.capture
	if o.warm != nil && o.warm.snap != nil && o.warm.structFP == in.StructureFingerprint() {
		o.core.WarmLP = o.warm.snap
	}
	res, err := core.SolveWith(ai, o.core, ws)
	if err != nil {
		return nil, err
	}
	out := &Result{
		Schedule:    res.Schedule,
		Makespan:    res.Makespan,
		LowerBound:  res.LowerBound,
		Guarantee:   res.Guarantee,
		Alloc:       res.Alpha,
		Mu:          res.Params.Mu,
		Rho:         res.Params.Rho,
		ProvenRatio: res.Params.R,
	}
	if res.Fractional != nil {
		out.Formulation = res.Fractional.Formulation
		out.LPCuts = res.Fractional.Cuts
		out.LPRounds = res.Fractional.Rounds
	}
	if res.LPSnapshot != nil {
		out.State = &SolverState{snap: res.LPSnapshot, structFP: in.StructureFingerprint()}
	}
	return out, nil
}

// SolveLTW runs the Lepère–Trystram–Woeginger baseline (the comparison
// algorithm of the paper's Table 3, ratio asymptotically 3+sqrt(5)).
func SolveLTW(in *Instance) (*Result, error) {
	return solveAlgoWith(in, nil, AlgoLTW, nil)
}

// SolveSequential schedules every task on one processor (no malleability).
func SolveSequential(in *Instance) (*Result, error) {
	return solveAlgoWith(in, nil, AlgoSequential, nil)
}

// SolveGreedyCP runs the greedy critical-path heuristic baseline.
func SolveGreedyCP(in *Instance) (*Result, error) {
	return solveAlgoWith(in, nil, AlgoGreedyCP, nil)
}

// SolveFullAllotment gives every task all m processors (serialising).
func SolveFullAllotment(in *Instance) (*Result, error) {
	return solveAlgoWith(in, nil, AlgoFullAllotment, nil)
}

// Optimal computes the exact optimal makespan by exhaustive search. Only
// feasible for tiny instances (n <= 8 tasks, m <= 8 processors); it panics
// beyond those limits.
func Optimal(in *Instance) (float64, error) {
	ai, err := in.internal()
	if err != nil {
		return 0, err
	}
	return bruteforce.Optimal(ai), nil
}

// Verify checks that a result's schedule is feasible for the instance.
func Verify(in *Instance, res *Result) error {
	g, err := in.graph()
	if err != nil {
		return err
	}
	if err := res.Schedule.Verify(g); err != nil {
		return err
	}
	// Replay on the simulated machine binds concrete processor IDs.
	_, err = sim.Replay(res.Schedule)
	return err
}

// Params returns the paper's parameter choice and proven approximation
// ratio for a machine of m processors (Table 2 of the paper).
func Params(m int) (mu int, rho, ratio float64) {
	c := params.Choose(m)
	return c.Mu, c.Rho, c.R
}

// Gantt renders an ASCII Gantt chart of the schedule to w.
func Gantt(w io.Writer, s *Schedule, width int) error { return trace.Gantt(w, s, width) }

// WriteJSON serialises an instance.
func WriteJSON(w io.Writer, in *Instance) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(in)
}

// ReadJSON deserialises an instance and validates it.
func ReadJSON(r io.Reader) (*Instance, error) {
	var in Instance
	if err := json.NewDecoder(r).Decode(&in); err != nil {
		return nil, fmt.Errorf("malsched: decoding instance: %w", err)
	}
	if err := in.Validate(); err != nil {
		return nil, err
	}
	return &in, nil
}
